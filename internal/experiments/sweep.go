package experiments

import (
	"fmt"
	"time"

	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	"crystalball/internal/stats"
)

// SweepConfig parameterises the scenario x workers x policy coverage
// matrix (the MET-style sweep the scenario registry was built for).
type SweepConfig struct {
	Seed int64
	// Workers lists the worker-pool sizes to sweep (nil = 1, 2, 4).
	Workers []int
	// Policies lists the budget-policy kinds to sweep (nil = all
	// built-ins).
	Policies []string
	// States is the base per-round state budget every policy plans from
	// (0 = 4000).
	States int
	// Rounds is how many planning rounds each cell runs; policies with
	// feedback (adaptive) show their round-2+ behavior (0 = 3).
	Rounds int
	// Interval is the nominal snapshot interval fed to Plan (0 = 10 s).
	Interval time.Duration
}

// SweepRow is one cell of the matrix: a scenario checked offline under one
// (policy, workers) combination for cfg.Rounds planning rounds.
type SweepRow struct {
	Scenario string
	Policy   string
	Workers  int
	// PlannedStates is the last round's planned state budget.
	PlannedStates int
	// States and Transitions aggregate over all rounds.
	States      int
	Transitions int
	// StatesPerSec is the last round's wall-clock throughput.
	StatesPerSec float64
	// Distinct counts distinct violation signatures seen across rounds.
	Distinct int
}

// Sweep runs the matrix: every registered scenario x every worker count x
// every policy kind. Each cell explores the scenario's initial state with
// consequence prediction for cfg.Rounds rounds, letting the policy re-plan
// between rounds from the previous round's wall-clock report — the same
// Plan/Observe loop live controllers run, driven offline.
func Sweep(cfg SweepConfig) []SweepRow {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = mc.PolicyKinds()
	}
	if cfg.States == 0 {
		cfg.States = 4000
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 3
	}
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Second
	}
	var rows []SweepRow
	for _, name := range scenario.Names() {
		for _, policy := range cfg.Policies {
			for _, workers := range cfg.Workers {
				rows = append(rows, sweepCell(cfg, name, policy, workers))
			}
		}
	}
	return rows
}

func sweepCell(cfg SweepConfig, name, policy string, workers int) SweepRow {
	row := SweepRow{Scenario: name, Policy: policy, Workers: workers}
	pol := mc.PolicySpec{
		Kind: policy,
		Base: mc.Budget{States: cfg.States, Violations: 8, Workers: workers},
	}.MustNew()
	distinct := map[string]bool{}
	for round := 1; round <= cfg.Rounds; round++ {
		g, searchCfg, err := scenario.InitialState(name, scenario.Options{})
		if err != nil {
			panic(err)
		}
		plan := pol.Plan(mc.RoundInfo{
			Round:         round,
			SnapshotBytes: g.EncodedSize(),
			SnapshotNodes: len(g.Nodes()),
			Interval:      cfg.Interval,
		})
		searchCfg.Mode = mc.Consequence
		searchCfg.Budget = plan
		searchCfg.Seed = cfg.Seed + int64(round)
		res := mc.NewSearch(searchCfg).Run(g)
		pol.Observe(mc.RoundReport{
			Budget:     plan,
			States:     res.StatesExplored,
			Violations: len(res.Violations),
			Elapsed:    res.Elapsed,
		})
		for _, v := range res.Violations {
			distinct[v.Signature()] = true
		}
		row.PlannedStates = plan.States
		row.States += res.StatesExplored
		row.Transitions += res.Transitions
		if res.Elapsed > 0 {
			row.StatesPerSec = float64(res.StatesExplored) / res.Elapsed.Seconds()
		}
	}
	row.Distinct = len(distinct)
	return row
}

// FormatSweep renders the matrix as a states/sec + findings coverage
// table.
func FormatSweep(rows []SweepRow) string {
	t := stats.Table{
		Title: "Scenario x workers x policy sweep (consequence prediction, per-cell rounds with feedback)",
		Header: []string{"scenario", "policy", "workers", "planned-states",
			"states", "transitions", "states/sec", "distinct-bugs"},
	}
	for _, r := range rows {
		t.Add(r.Scenario, r.Policy, r.Workers, r.PlannedStates,
			r.States, r.Transitions, fmt.Sprintf("%.0f", r.StatesPerSec), r.Distinct)
	}
	return t.String()
}
