package experiments

import (
	"fmt"
	"time"

	"crystalball/internal/dist"
	"crystalball/internal/mc"
	"crystalball/internal/scenario"
	"crystalball/internal/stats"
)

// SweepConfig parameterises the scenario x workers x policy x reduction
// coverage matrix (the MET-style sweep the scenario registry was built
// for).
type SweepConfig struct {
	Seed int64
	// Workers lists the worker-pool sizes to sweep (nil = 1, 2, 4).
	Workers []int
	// Policies lists the budget-policy kinds to sweep (nil = all
	// built-ins).
	Policies []string
	// Reduce lists the partial-order-reduction settings to sweep (nil =
	// off then on, so each cell's coverage gain is visible in adjacent
	// rows).
	Reduce []bool
	// Shards lists the distributed-search shard counts to sweep (nil =
	// just 1 = the single-process engine). Cells with more than one shard
	// run the distributed exhaustive search (internal/dist) instead of
	// consequence prediction — reduction does not apply there, so the
	// reduce axis collapses for those cells.
	Shards []int
	// States is the base per-round state budget every policy plans from
	// (0 = 4000).
	States int
	// Rounds is how many planning rounds each cell runs; policies with
	// feedback (adaptive) show their round-2+ behavior (0 = 3).
	Rounds int
	// Interval is the nominal snapshot interval fed to Plan (0 = 10 s).
	Interval time.Duration
	// Faults is a dist.FaultPlan spec injected into every distributed cell
	// (shards > 1), so the sweep can measure recovery cost: the Retries
	// and ShardsLost columns show what the fault plan did to each cell.
	// Empty = fault-free. Single-engine cells ignore it.
	Faults string
}

// SweepRow is one cell of the matrix: a scenario checked offline under one
// (policy, workers, reduce) combination for cfg.Rounds planning rounds.
type SweepRow struct {
	Scenario string
	Policy   string
	Workers  int
	// Reduce records whether the cell ran with sleep-set partial-order
	// reduction.
	Reduce bool
	// PlannedStates is the last round's planned state budget.
	PlannedStates int
	// States and Transitions aggregate over all rounds.
	States      int
	Transitions int
	// Pruned aggregates the transitions the checker skipped as provably
	// redundant (sleep-set hits plus local-state prunes).
	Pruned int
	// Shards is the distributed-search shard count (1 = single engine).
	Shards int
	// Forwarded/Received/RemoteDeduped/BatchFlushes aggregate the
	// frontier-exchange counters over rounds (zero for shards = 1).
	Forwarded     int64
	Received      int64
	RemoteDeduped int64
	BatchFlushes  int64
	// DistinctLocals counts the distinct node-local states reached,
	// summed over rounds (each round reports its own distinct set).
	DistinctLocals int
	// Retries and ShardsLost aggregate the recovery telemetry over rounds
	// when SweepConfig.Faults injects failures into distributed cells:
	// rounds re-run after a shard death, and shard deaths observed.
	Retries    int
	ShardsLost int
	// Coverage is the sweep's quality metric — distinct local states
	// reached per 1000 states of exploration budget. Raw states/sec
	// rewards re-claiming cheap duplicate interleavings; locals-per-
	// budget measures how much *new service behavior* each unit of
	// checker budget buys, which is what consequence prediction's
	// lookahead actually depends on.
	Coverage float64
	// Distinct counts distinct violation signatures seen across rounds.
	Distinct int
}

// Sweep runs the matrix: every registered scenario x every worker count x
// every policy kind x reduction off/on. Each cell explores the scenario's
// initial state with consequence prediction for cfg.Rounds rounds, letting
// the policy re-plan between rounds from the previous round's wall-clock
// report — the same Plan/Observe loop live controllers run, driven offline.
func Sweep(cfg SweepConfig) []SweepRow {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = mc.PolicyKinds()
	}
	if len(cfg.Reduce) == 0 {
		cfg.Reduce = []bool{false, true}
	}
	if cfg.States == 0 {
		cfg.States = 4000
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 3
	}
	if cfg.Interval == 0 {
		cfg.Interval = 10 * time.Second
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1}
	}
	var rows []SweepRow
	for _, name := range scenario.Names() {
		for _, policy := range cfg.Policies {
			for _, workers := range cfg.Workers {
				for _, shards := range cfg.Shards {
					for _, reduce := range cfg.Reduce {
						if shards > 1 && reduce {
							continue // reduction does not apply to dist cells
						}
						rows = append(rows, sweepCell(cfg, name, policy, workers, shards, reduce))
					}
				}
			}
		}
	}
	return rows
}

func sweepCell(cfg SweepConfig, name, policy string, workers, shards int, reduce bool) SweepRow {
	row := SweepRow{Scenario: name, Policy: policy, Workers: workers, Shards: shards, Reduce: reduce}
	pol := mc.PolicySpec{
		Kind: policy,
		Base: mc.Budget{States: cfg.States, Violations: 8, Workers: workers},
	}.MustNew()
	distinct := map[string]bool{}
	budgeted := 0
	for round := 1; round <= cfg.Rounds; round++ {
		g, searchCfg, err := scenario.InitialState(name, scenario.Options{})
		if err != nil {
			panic(err)
		}
		plan := pol.Plan(mc.RoundInfo{
			Round:         round,
			SnapshotBytes: g.EncodedSize(),
			SnapshotNodes: len(g.Nodes()),
			Interval:      cfg.Interval,
		})
		searchCfg.Budget = plan
		searchCfg.Seed = cfg.Seed + int64(round)
		var res *mc.Result
		var report mc.RoundReport
		if shards > 1 {
			// Distributed cells run the sharded exhaustive search; the
			// coordinator's merged round report feeds the policy.
			searchCfg.Mode = mc.Exhaustive
			dres, err := dist.Local(dist.LocalConfig{
				Shards: shards,
				Search: searchCfg,
				Root:   g,
				Budget: plan,
				Faults: dist.MustFaultPlan(cfg.Faults),
			})
			if err != nil {
				panic(err)
			}
			res = &dres.Checker
			report = dres.Round
			row.Forwarded += dres.Stats.StatesForwarded
			row.Received += dres.Stats.StatesReceived
			row.RemoteDeduped += dres.Stats.RemoteDeduped
			row.BatchFlushes += dres.Stats.BatchFlushes
			row.Retries += dres.Recovery.Retries
			row.ShardsLost += len(dres.Recovery.Deaths)
		} else {
			searchCfg.Mode = mc.Consequence
			searchCfg.Reduce = reduce
			res = mc.NewSearch(searchCfg).Run(g)
			report = mc.RoundReport{
				Budget:     plan,
				States:     res.StatesExplored,
				Violations: len(res.Violations),
				Pruned:     res.TransitionsPruned,
				Elapsed:    res.Elapsed,
			}
		}
		pol.Observe(report)
		for _, v := range res.Violations {
			distinct[v.Signature()] = true
		}
		row.PlannedStates = plan.States
		row.States += res.StatesExplored
		row.Transitions += res.Transitions
		row.Pruned += res.TransitionsPruned
		row.DistinctLocals += res.DistinctLocalStates
		budgeted += plan.States
	}
	if budgeted > 0 {
		row.Coverage = 1000 * float64(row.DistinctLocals) / float64(budgeted)
	}
	row.Distinct = len(distinct)
	return row
}

// FormatSweep renders the matrix as a locals-per-budget coverage table;
// distributed cells (shards > 1) additionally report their frontier-
// exchange counters.
func FormatSweep(rows []SweepRow) string {
	t := stats.Table{
		Title: "Scenario x workers x shards x policy x reduction sweep (per-cell rounds with feedback)",
		Header: []string{"scenario", "policy", "workers", "shards", "reduce", "planned-states",
			"states", "transitions", "pruned", "fwd", "rcvd", "rdedup", "flushes",
			"retries", "lost", "locals", "locals/1k-budget", "distinct-bugs"},
	}
	for _, r := range rows {
		t.Add(r.Scenario, r.Policy, r.Workers, r.Shards, onOff(r.Reduce), r.PlannedStates,
			r.States, r.Transitions, r.Pruned,
			r.Forwarded, r.Received, r.RemoteDeduped, r.BatchFlushes,
			r.Retries, r.ShardsLost,
			r.DistinctLocals, fmt.Sprintf("%.1f", r.Coverage), r.Distinct)
	}
	return t.String()
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
