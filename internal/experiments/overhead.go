package experiments

import (
	"time"

	"crystalball/internal/runtime"
	"crystalball/internal/services/bulletprime"
	"crystalball/internal/services/chord"
	"crystalball/internal/services/randtree"
	"crystalball/internal/sim"
	"crystalball/internal/simnet"
	"crystalball/internal/snapshot"
	"crystalball/internal/stats"
)

// OverheadConfig parameterises the checkpoint-overhead measurements.
type OverheadConfig struct {
	Seed     int64
	Nodes    int // paper: 100 logical nodes
	Duration time.Duration
}

// OverheadRow reports one service's checkpoint costs (paper section 5.5:
// RandTree checkpoints ~176 B at ~803 bps/node, Chord ~1028 B at ~8224
// bps/node, Bullet′ ~3 kB compressed at ~30 kbps).
type OverheadRow struct {
	System             string
	MeanCheckpointRaw  float64 // bytes, uncompressed
	MeanCheckpointWire float64 // bytes on the wire (compressed, deduped)
	PerNodeBps         float64
	PaperCkptBytes     int
	PaperBps           float64
}

// Overhead measures checkpoint sizes and per-node checkpoint bandwidth for
// the three data-plane services with snapshots collected every 10 s.
func Overhead(cfg OverheadConfig) []OverheadRow {
	if cfg.Nodes == 0 {
		cfg.Nodes = 30
	}
	if cfg.Duration == 0 {
		cfg.Duration = 3 * time.Minute
	}
	rows := []OverheadRow{
		overheadRandTree(cfg),
		overheadChord(cfg),
		overheadBullet(cfg),
	}
	return rows
}

// runOverhead deploys the service with checkpoint managers and periodic
// neighborhood collections, then reports sizes and bandwidth.
func runOverhead(system string, s *sim.Simulator, nodes []*runtime.Node,
	net *simnet.Network, duration time.Duration) OverheadRow {
	var mgrs []*snapshot.Manager
	for _, node := range nodes {
		mgrs = append(mgrs, snapshot.NewManager(s, node, SnapCfg()))
	}
	// Every node gathers its neighborhood snapshot every 10 s, like the
	// controller would.
	for i, node := range nodes {
		node := node
		mgr := mgrs[i]
		var round func()
		round = func() {
			mgr.Collect(node.Service().Neighbors(), func(*snapshot.Snapshot) {})
			s.After(10*time.Second, round)
		}
		s.After(10*time.Second+time.Duration(i)*50*time.Millisecond, round)
	}
	s.RunFor(duration)

	// Mean checkpoint sizes: raw is the node's actual state-encoding
	// size; wire averages only over payload-carrying responses
	// (duplicate-suppressed responses transfer no state by design).
	raw, wire := &stats.Sample{}, &stats.Sample{}
	for _, mgr := range mgrs {
		if sz := mgr.LatestCheckpointSize(); sz > 0 {
			raw.Add(float64(sz))
		}
		if payload := mgr.Stats.ResponsesSent - mgr.Stats.DupSuppressed; payload > 0 {
			wire.Add(float64(mgr.Stats.BytesSentWire) / float64(payload))
		}
	}
	total := net.TotalBytesOut(simnet.KindCheckpoint)
	bps := stats.Rate(total, duration) / float64(len(nodes))
	return OverheadRow{
		System:             system,
		MeanCheckpointRaw:  raw.Mean(),
		MeanCheckpointWire: wire.Mean(),
		PerNodeBps:         bps,
	}
}

func overheadRandTree(cfg OverheadConfig) OverheadRow {
	s := sim.New(cfg.Seed)
	factory := randtree.New(randtree.Config{Bootstrap: ids(cfg.Nodes)[:1], MaxChildren: 4, Fixes: randtree.AllFixes})
	net := simnet.New(s, lanPath())
	var nodes []*runtime.Node
	for _, id := range ids(cfg.Nodes) {
		nodes = append(nodes, runtime.NewNode(s, net, id, factory))
	}
	for _, node := range nodes {
		node.App(randtree.AppJoin{})
	}
	s.RunFor(20 * time.Second) // let the tree form
	row := runOverhead("RandTree", s, nodes, net, cfg.Duration)
	row.PaperCkptBytes, row.PaperBps = 176, 803
	return row
}

func overheadChord(cfg OverheadConfig) OverheadRow {
	s := sim.New(cfg.Seed + 1)
	factory := chord.New(chord.Config{Bootstrap: ids(cfg.Nodes)[:1], Fixes: chord.AllFixes})
	net := simnet.New(s, lanPath())
	var nodes []*runtime.Node
	for _, id := range ids(cfg.Nodes) {
		nodes = append(nodes, runtime.NewNode(s, net, id, factory))
	}
	for i, node := range nodes {
		node := node
		s.After(time.Duration(i)*500*time.Millisecond, func() { node.App(chord.AppJoin{}) })
	}
	s.RunFor(time.Duration(cfg.Nodes)*500*time.Millisecond + 10*time.Second)
	row := runOverhead("Chord", s, nodes, net, cfg.Duration)
	row.PaperCkptBytes, row.PaperBps = 1028, 8224
	return row
}

func overheadBullet(cfg OverheadConfig) OverheadRow {
	s := sim.New(cfg.Seed + 2)
	n := cfg.Nodes
	if n > 12 {
		n = 12
	}
	factory := bulletprime.New(bulletprime.Config{
		Members: ids(n), Source: 1, Blocks: 48, BlockSize: 32 << 10,
		Fixes: bulletprime.AllFixes,
	})
	net := simnet.New(s, lanPath())
	var nodes []*runtime.Node
	for _, id := range ids(n) {
		nodes = append(nodes, runtime.NewNode(s, net, id, factory))
	}
	s.RunFor(10 * time.Second) // mesh + some transfer state
	row := runOverhead("Bullet'", s, nodes, net, cfg.Duration)
	row.PaperCkptBytes, row.PaperBps = 3000, 30000
	return row
}

// FormatOverhead renders the section 5.5 table.
func FormatOverhead(rows []OverheadRow) string {
	t := stats.Table{
		Title: "Section 5.5: checkpoint sizes and bandwidth",
		Header: []string{"system", "ckpt-raw(B)", "ckpt-wire(B)", "bps/node",
			"paper-ckpt(B)", "paper-bps"},
	}
	for _, r := range rows {
		t.Add(r.System, r.MeanCheckpointRaw, r.MeanCheckpointWire, r.PerNodeBps,
			r.PaperCkptBytes, r.PaperBps)
	}
	return t.String()
}
