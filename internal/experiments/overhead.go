package experiments

import (
	"time"

	"crystalball/internal/scenario"
	"crystalball/internal/simnet"
	"crystalball/internal/snapshot"
	"crystalball/internal/stats"
)

// OverheadConfig parameterises the checkpoint-overhead measurements.
type OverheadConfig struct {
	Seed     int64
	Nodes    int // paper: 100 logical nodes
	Duration time.Duration
}

// OverheadRow reports one service's checkpoint costs (paper section 5.5:
// RandTree checkpoints ~176 B at ~803 bps/node, Chord ~1028 B at ~8224
// bps/node, Bullet′ ~3 kB compressed at ~30 kbps).
type OverheadRow struct {
	System             string
	MeanCheckpointRaw  float64 // bytes, uncompressed
	MeanCheckpointWire float64 // bytes on the wire (compressed, deduped)
	PerNodeBps         float64
	PaperCkptBytes     int
	PaperBps           float64
}

// Overhead measures checkpoint sizes and per-node checkpoint bandwidth for
// the three data-plane services with snapshots collected every 10 s. Every
// service is its fixed (bug-free) variant deployed bare with standalone
// snapshot managers — the cost of checkpointing alone, no controllers.
func Overhead(cfg OverheadConfig) []OverheadRow {
	if cfg.Nodes == 0 {
		cfg.Nodes = 30
	}
	if cfg.Duration == 0 {
		cfg.Duration = 3 * time.Minute
	}
	bulletNodes := cfg.Nodes
	if bulletNodes > 12 {
		bulletNodes = 12
	}
	rows := []OverheadRow{
		overheadRun("randtree", "RandTree", cfg.Seed,
			scenario.Options{Nodes: cfg.Nodes, Degree: 4, Fixed: true},
			20*time.Second, cfg.Duration),
		overheadRun("chord", "Chord", cfg.Seed+1,
			scenario.Options{Nodes: cfg.Nodes, Fixed: true},
			time.Duration(cfg.Nodes)*700*time.Millisecond+10*time.Second, cfg.Duration),
		overheadRun("bulletprime", "Bullet'", cfg.Seed+2,
			scenario.Options{Nodes: bulletNodes, Blocks: 48, BlockSize: 32 << 10, Fixed: true},
			10*time.Second, cfg.Duration),
	}
	rows[0].PaperCkptBytes, rows[0].PaperBps = 176, 803
	rows[1].PaperCkptBytes, rows[1].PaperBps = 1028, 8224
	rows[2].PaperCkptBytes, rows[2].PaperBps = 3000, 30000
	return rows
}

// overheadRun deploys the scenario bare with checkpoint managers, lets the
// overlay form for warmup, then gathers every node's neighborhood snapshot
// every 10 s — like the controller would — and reports sizes and
// bandwidth.
func overheadRun(name, system string, seed int64, opts scenario.Options, warmup, duration time.Duration) OverheadRow {
	d, err := scenario.Deploy(name, scenario.DeployOptions{
		Seed:        seed,
		Service:     opts,
		Control:     scenario.Bare,
		Checkpoints: true,
		Workload:    true,
	})
	if err != nil {
		panic(err)
	}
	s := d.Sim
	s.RunFor(warmup) // let the overlay form
	for i, node := range d.Nodes {
		node := node
		mgr := d.Mgrs[i]
		var round func()
		round = func() {
			mgr.Collect(node.Service().Neighbors(), func(*snapshot.Snapshot) {})
			s.After(10*time.Second, round)
		}
		s.After(10*time.Second+time.Duration(i)*50*time.Millisecond, round)
	}
	s.RunFor(duration)

	// Mean checkpoint sizes: raw is the node's actual state-encoding
	// size; wire averages only over payload-carrying responses
	// (duplicate-suppressed responses transfer no state by design).
	raw, wire := &stats.Sample{}, &stats.Sample{}
	for _, mgr := range d.Mgrs {
		if sz := mgr.LatestCheckpointSize(); sz > 0 {
			raw.Add(float64(sz))
		}
		if payload := mgr.Stats.ResponsesSent - mgr.Stats.DupSuppressed; payload > 0 {
			wire.Add(float64(mgr.Stats.BytesSentWire) / float64(payload))
		}
	}
	total := d.Net.TotalBytesOut(simnet.KindCheckpoint)
	bps := stats.Rate(total, duration) / float64(len(d.Nodes))
	return OverheadRow{
		System:             system,
		MeanCheckpointRaw:  raw.Mean(),
		MeanCheckpointWire: wire.Mean(),
		PerNodeBps:         bps,
	}
}

// FormatOverhead renders the section 5.5 table.
func FormatOverhead(rows []OverheadRow) string {
	t := stats.Table{
		Title: "Section 5.5: checkpoint sizes and bandwidth",
		Header: []string{"system", "ckpt-raw(B)", "ckpt-wire(B)", "bps/node",
			"paper-ckpt(B)", "paper-bps"},
	}
	for _, r := range rows {
		t.Add(r.System, r.MeanCheckpointRaw, r.MeanCheckpointWire, r.PerNodeBps,
			r.PaperCkptBytes, r.PaperBps)
	}
	return t.String()
}
