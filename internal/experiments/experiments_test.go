package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig12ExhaustiveGrowth(t *testing.T) {
	pts := Fig12Exhaustive(Fig12Config{Seed: 1, Nodes: 4, MaxDepth: 5, MaxStates: 200000})
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	// The hallmark of Figure 12: state counts (and so elapsed time) grow
	// superlinearly with depth.
	for i := 1; i < len(pts); i++ {
		if pts[i].States < pts[i-1].States {
			t.Fatalf("states shrank with depth: %+v", pts)
		}
	}
	if pts[4].States < 8*pts[1].States {
		t.Fatalf("no exponential growth: depth2=%d depth5=%d", pts[1].States, pts[4].States)
	}
	if !strings.Contains(FormatDepthPoints("x", pts), "depth") {
		t.Fatal("formatting broken")
	}
}

func TestFig15MemoryGrowsAndPerStateStabilises(t *testing.T) {
	pts := Fig15Memory(Fig15Config{Seed: 1, MaxDepth: 5, MaxStates: 150000})
	last := pts[len(pts)-1]
	if last.MemBytes <= pts[0].MemBytes {
		t.Fatalf("memory did not grow with depth: %+v", pts)
	}
	// Figure 16's shape: per-state cost settles in the hundreds of bytes.
	if last.PerStateByte < 20 || last.PerStateByte > 5000 {
		t.Fatalf("per-state bytes implausible: %v", last.PerStateByte)
	}
}

func TestDepthComparisonConsequenceWins(t *testing.T) {
	budget := 2 * time.Second
	if testing.Short() {
		budget = 500 * time.Millisecond
	}
	rows := DepthComparison(1, budget, []int{5}, 0)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	var exLive, cpLive DepthBudgetRow
	for _, r := range rows {
		if r.Start != "live-snapshot" {
			continue
		}
		if r.Mode == "exhaustive" {
			exLive = r
		} else {
			cpLive = r
		}
	}
	// From the live snapshot, consequence prediction must find the
	// Figure 2-class violation with no more states than exhaustive.
	if cpLive.Violations == 0 {
		t.Fatal("consequence prediction missed the live-snapshot violation")
	}
	if exLive.Violations > 0 && cpLive.States > exLive.States {
		t.Fatalf("consequence needed more states (%d) than exhaustive (%d)",
			cpLive.States, exLive.States)
	}
}

func TestTable1FindsBugsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results := Table1(Table1Config{Seed: 3, Nodes: 8, Duration: 4 * time.Minute, MCStates: 6000})
	var total int
	for _, r := range results {
		total += len(r.Distinct)
	}
	if total == 0 {
		t.Fatal("deep online debugging found nothing at all")
	}
	out := FormatTable1(results)
	if !strings.Contains(out, "RandTree") {
		t.Fatal("format broken")
	}
}

func TestSteeringArmsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := SteeringConfig{Seed: 5, Nodes: 10, Duration: 6 * time.Minute, ChurnGap: 45 * time.Second, MCStates: 4000}
	bare := RandTreeSteering(cfg, NoProtection)
	protected := RandTreeSteering(cfg, SteeringAndISC)
	if bare.ActionsExecuted == 0 || protected.ActionsExecuted == 0 {
		t.Fatal("no actions executed")
	}
	// The qualitative claim: protection reduces ground-truth
	// inconsistencies.
	if bare.InconsistentStates == 0 {
		t.Skip("churn too mild to trigger inconsistencies in this window")
	}
	if protected.InconsistentStates > bare.InconsistentStates {
		t.Fatalf("protection increased inconsistencies: %d -> %d",
			bare.InconsistentStates, protected.InconsistentStates)
	}
	_ = FormatSteering([]SteeringResult{bare, protected})
}

func TestFig14Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Fig14Paxos(Fig14Config{Seed: 7, Runs: 6, MaxGap: 30 * time.Second, MCStates: 8000})
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Steering+r.ISC+r.Violated+r.Clean != r.Runs {
			t.Fatalf("outcomes do not sum to runs: %+v", r)
		}
		// The headline claim: most runs avoid the violation.
		if r.Violated > r.Runs/2 {
			t.Fatalf("%s: more than half the runs violated: %+v", r.Bug, r)
		}
	}
	_ = FormatFig14(res)
}

func TestFig17Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig17Bullet(Fig17Config{Seed: 9, Nodes: 6, Blocks: 16, BlockSize: 32 << 10, Deadline: 10 * time.Minute})
	if r.Completed[0] == 0 || r.Completed[1] == 0 {
		t.Fatalf("downloads did not complete: %+v", r.Completed)
	}
	// CrystalBall should not make it pathologically slower.
	if r.MeanSlowdown > 0.5 {
		t.Fatalf("slowdown %.0f%% too large", 100*r.MeanSlowdown)
	}
	_ = FormatFig17(r)
}

func TestOverheadQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := Overhead(OverheadConfig{Seed: 11, Nodes: 10, Duration: time.Minute})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanCheckpointRaw <= 0 {
			t.Fatalf("%s: no checkpoint size measured", r.System)
		}
		if r.PerNodeBps <= 0 {
			t.Fatalf("%s: no checkpoint bandwidth measured", r.System)
		}
	}
	_ = FormatOverhead(rows)
}
