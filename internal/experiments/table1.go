package experiments

import (
	"fmt"
	"math"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/services/bulletprime"
	"crystalball/internal/services/chord"
	"crystalball/internal/services/randtree"
	"crystalball/internal/sim"
	"crystalball/internal/sm"
	"crystalball/internal/stats"
)

// Table1Config parameterises the deep-online-debugging bug hunt.
type Table1Config struct {
	Seed int64
	// Nodes per service deployment (paper: 100 logical nodes for the
	// large runs, 6 for the small ones).
	Nodes int
	// Duration of virtual time per service (paper: up to a day of wall
	// time; violations typically surfaced within the hour).
	Duration time.Duration
	// MCStates bounds each consequence-prediction run.
	MCStates int
	// Workers is the checker's worker-pool size (0 = GOMAXPROCS).
	Workers int
}

// Table1Result reports distinct bug classes found per system.
type Table1Result struct {
	System   string
	Findings []controller.Finding
	Distinct []controller.Finding
}

// Table1 reproduces the paper's Table 1: CrystalBall in deep online
// debugging mode runs against the buggy (as-shipped) implementations of
// RandTree, Chord and Bullet′ under churn, and reports the distinct
// inconsistency classes predicted (paper: RandTree 7, Chord 3, Bullet′ 3).
func Table1(cfg Table1Config) []Table1Result {
	if cfg.Nodes == 0 {
		cfg.Nodes = 12
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Minute
	}
	if cfg.MCStates == 0 {
		cfg.MCStates = 12000
	}
	return []Table1Result{
		table1RandTree(cfg),
		table1Chord(cfg),
		table1Bullet(cfg),
	}
}

func table1RandTree(cfg Table1Config) Table1Result {
	s := sim.New(cfg.Seed)
	factory := randtree.New(randtree.Config{Bootstrap: ids(cfg.Nodes)[:1], MaxChildren: 3})
	ctrl := controller.DefaultConfig(randtree.Properties, factory)
	ctrl.Mode = controller.DeepOnlineDebugging
	ctrl.MCStates = cfg.MCStates
	ctrl.Workers = cfg.Workers
	ctrl.EnableISC = false // debugging observes, never intervenes
	ctrl.SnapshotInterval = 15 * time.Second
	d := Deploy(s, lanPath(), cfg.Nodes, factory, &ctrl, SnapCfg())
	for _, node := range d.Nodes {
		node.App(randtree.AppJoin{})
	}
	// Churn: roughly one reset+rejoin per minute.
	Churn(s, d, 60*time.Second, func(node *sm.NodeID) sm.AppCall { return randtree.AppJoin{} })
	s.RunFor(cfg.Duration)
	all := d.TotalFindings()
	return Table1Result{System: "RandTree", Findings: all, Distinct: controller.DistinctFindings(all)}
}

func table1Chord(cfg Table1Config) Table1Result {
	s := sim.New(cfg.Seed + 1)
	factory := chord.New(chord.Config{Bootstrap: ids(cfg.Nodes)[:1]})
	ctrl := controller.DefaultConfig(chord.Properties, factory)
	ctrl.Mode = controller.DeepOnlineDebugging
	ctrl.MCStates = cfg.MCStates
	ctrl.Workers = cfg.Workers
	ctrl.EnableISC = false
	ctrl.SnapshotInterval = 15 * time.Second
	d := Deploy(s, lanPath(), cfg.Nodes, factory, &ctrl, SnapCfg())
	// Stagger joins so the ring forms.
	for i, node := range d.Nodes {
		node := node
		s.After(time.Duration(i)*700*time.Millisecond, func() { node.App(chord.AppJoin{}) })
	}
	Churn(s, d, 60*time.Second, func(node *sm.NodeID) sm.AppCall { return chord.AppJoin{} })
	s.RunFor(cfg.Duration)
	all := d.TotalFindings()
	return Table1Result{System: "Chord", Findings: all, Distinct: controller.DistinctFindings(all)}
}

func table1Bullet(cfg Table1Config) Table1Result {
	s := sim.New(cfg.Seed + 2)
	n := cfg.Nodes
	if n > 10 {
		n = 10 // Bullet′ state is heavy; the paper's run found its bug within minutes
	}
	factory := bulletprime.New(bulletprime.Config{
		Members:   ids(n),
		Source:    1,
		Blocks:    24,
		BlockSize: 32 << 10,
	})
	ctrl := controller.DefaultConfig(bulletprime.DebugProperties, factory)
	ctrl.Mode = controller.DeepOnlineDebugging
	ctrl.MCStates = cfg.MCStates / 2 // states are large
	ctrl.Workers = cfg.Workers
	ctrl.EnableISC = false
	ctrl.SnapshotInterval = 15 * time.Second
	d := Deploy(s, lanPath(), n, factory, &ctrl, SnapCfg())
	Churn(s, d, 90*time.Second, nil)
	s.RunFor(cfg.Duration)
	all := d.TotalFindings()
	return Table1Result{System: "Bullet'", Findings: all, Distinct: controller.DistinctFindings(all)}
}

// Churn resets a random node (silently half the time) at exponential
// intervals with the given mean, then reissues the join call if any.
func Churn(s *sim.Simulator, d *Deployment, mean time.Duration, rejoin func(*sm.NodeID) sm.AppCall) {
	rng := s.RNG("churn")
	var tick func()
	tick = func() {
		node := d.Nodes[rng.Intn(len(d.Nodes))]
		node.Reset(rng.Intn(2) == 0)
		if rejoin != nil {
			id := node.ID
			call := rejoin(&id)
			s.After(500*time.Millisecond, func() { node.App(call) })
		}
		gap := time.Duration(float64(mean) * expRand(rng.Float64()))
		s.After(gap, tick)
	}
	s.After(time.Duration(float64(mean)*expRand(rng.Float64())), tick)
}

// expRand converts a uniform sample into a unit-mean exponential sample,
// capped at 5 to avoid pathological gaps in short experiments.
func expRand(u float64) float64 {
	if u <= 0 {
		u = 1e-9
	}
	x := -math.Log(u)
	if x > 5 {
		x = 5
	}
	return x
}

// FormatTable1 renders Table 1 alongside the paper's numbers.
func FormatTable1(results []Table1Result) string {
	paper := map[string]int{"RandTree": 7, "Chord": 3, "Bullet'": 3}
	t := stats.Table{
		Title:  "Table 1: inconsistencies found in deep online debugging",
		Header: []string{"system", "distinct bug classes", "paper", "total findings"},
	}
	for _, r := range results {
		t.Add(r.System, len(r.Distinct), paper[r.System], len(r.Findings))
	}
	s := t.String()
	for _, r := range results {
		for _, f := range r.Distinct {
			s += fmt.Sprintf("  %s: %v via %s (depth %d)\n", r.System, f.Properties, lastKind(f), len(f.Path))
		}
	}
	return s
}

func lastKind(f controller.Finding) string {
	if len(f.Path) == 0 {
		return "?"
	}
	return controller.EventKind(f.Path[len(f.Path)-1])
}
