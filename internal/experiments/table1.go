package experiments

import (
	"fmt"
	"time"

	"crystalball/internal/controller"
	"crystalball/internal/scenario"
	"crystalball/internal/stats"
)

// Table1Config parameterises the deep-online-debugging bug hunt.
type Table1Config struct {
	Seed int64
	// Nodes per service deployment (paper: 100 logical nodes for the
	// large runs, 6 for the small ones).
	Nodes int
	// Duration of virtual time per service (paper: up to a day of wall
	// time; violations typically surfaced within the hour).
	Duration time.Duration
	// MCStates bounds each consequence-prediction run.
	MCStates int
	// Workers is the checker's worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Policy selects the per-round budget policy kind ("" = scenario
	// default, then fixed).
	Policy string
}

// Table1Result reports distinct bug classes found per system.
type Table1Result struct {
	System   string
	Findings []controller.Finding
	Distinct []controller.Finding
}

// Table1 reproduces the paper's Table 1: CrystalBall in deep online
// debugging mode runs against the buggy (as-shipped) implementations of
// RandTree, Chord and Bullet′ under churn, and reports the distinct
// inconsistency classes predicted (paper: RandTree 7, Chord 3, Bullet′ 3).
// All three deployments are the same scenario.Deploy call with a
// different registry name.
func Table1(cfg Table1Config) []Table1Result {
	if cfg.Nodes == 0 {
		cfg.Nodes = 12
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Minute
	}
	if cfg.MCStates == 0 {
		cfg.MCStates = 12000
	}
	bulletNodes := cfg.Nodes
	if bulletNodes > 10 {
		bulletNodes = 10 // Bullet′ state is heavy; the paper's run found its bug within minutes
	}
	return []Table1Result{
		table1Run("randtree", "RandTree", cfg, cfg.Seed,
			scenario.Options{Nodes: cfg.Nodes}, cfg.MCStates, 60*time.Second),
		table1Run("chord", "Chord", cfg, cfg.Seed+1,
			scenario.Options{Nodes: cfg.Nodes}, cfg.MCStates, 60*time.Second),
		// Half the state budget for Bullet′: its states are large.
		table1Run("bulletprime", "Bullet'", cfg, cfg.Seed+2,
			scenario.Options{Nodes: bulletNodes, Blocks: 24, BlockSize: 32 << 10},
			cfg.MCStates/2, 90*time.Second),
	}
}

// table1Run deploys one scenario in deep-online-debugging mode under churn
// and collects its findings. Debugging observes, never intervenes: the
// immediate safety check stays off (the scenario's Control default).
func table1Run(name, system string, cfg Table1Config, seed int64, opts scenario.Options, mcStates int, churn time.Duration) Table1Result {
	d, err := scenario.Deploy(name, scenario.DeployOptions{
		Seed:             seed,
		Service:          opts,
		Control:          scenario.Debug,
		Policy:           cfg.Policy,
		MCStates:         mcStates,
		Workers:          cfg.Workers,
		SnapshotInterval: 15 * time.Second,
		Workload:         true,
		Churn:            churn,
	})
	if err != nil {
		panic(err)
	}
	d.Sim.RunFor(cfg.Duration)
	all := d.TotalFindings()
	return Table1Result{System: system, Findings: all, Distinct: controller.DistinctFindings(all)}
}

// FormatTable1 renders Table 1 alongside the paper's numbers.
func FormatTable1(results []Table1Result) string {
	paper := map[string]int{"RandTree": 7, "Chord": 3, "Bullet'": 3}
	t := stats.Table{
		Title:  "Table 1: inconsistencies found in deep online debugging",
		Header: []string{"system", "distinct bug classes", "paper", "total findings"},
	}
	for _, r := range results {
		t.Add(r.System, len(r.Distinct), paper[r.System], len(r.Findings))
	}
	s := t.String()
	for _, r := range results {
		for _, f := range r.Distinct {
			s += fmt.Sprintf("  %s: %v via %s (depth %d)\n", r.System, f.Properties, lastKind(f), len(f.Path))
		}
	}
	return s
}

func lastKind(f controller.Finding) string {
	if len(f.Path) == 0 {
		return "?"
	}
	return controller.EventKind(f.Path[len(f.Path)-1])
}
