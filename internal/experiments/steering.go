package experiments

import (
	"fmt"
	"time"

	"crystalball/internal/props"
	"crystalball/internal/scenario"
	"crystalball/internal/services/randtree"
	"crystalball/internal/sm"
	"crystalball/internal/stats"
)

// SteeringConfig parameterises the RandTree execution-steering experiment
// (paper section 5.4.1).
type SteeringConfig struct {
	Seed     int64
	Nodes    int           // paper: 25
	Duration time.Duration // paper: 1.4 h of churn
	ChurnGap time.Duration // paper: one leave+join per minute on average
	MCStates int
	// Workers is the checker's worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Policy selects the per-round budget policy kind ("" = scenario
	// default, then fixed).
	Policy string
}

// SteeringMode selects which protections are active.
type SteeringMode int

// Steering experiment arms (the paper's three runs).
const (
	// NoProtection runs the buggy service bare.
	NoProtection SteeringMode = iota
	// ISCOnly runs only the immediate safety check.
	ISCOnly
	// SteeringAndISC runs execution steering with the ISC fallback.
	SteeringAndISC
)

func (m SteeringMode) String() string {
	switch m {
	case NoProtection:
		return "no CrystalBall"
	case ISCOnly:
		return "ISC only"
	default:
		return "steering + ISC"
	}
}

// SteeringResult reports one arm's counters (the paper's section 5.4.1
// numbers: 121 inconsistent states bare; 325 ISC blocks; 480 predictions /
// 415 steered / 65 unhelpful / 160 ISC with both on; 0 violations; 2.77%
// of 14,956 actions changed; join times unchanged).
type SteeringResult struct {
	Mode                SteeringMode
	InconsistentStates  int64 // ground-truth states containing a violation
	ActionsExecuted     int64
	ActionsChanged      int64 // filter drops + deferrals + ISC blocks
	ISCChecks           int64
	ISCBlocks           int64
	ViolationsPredicted int64
	FiltersInstalled    int64
	SteeringUnhelpful   int64
	MeanJoinTime        time.Duration
	JoinSamples         int
}

// RandTreeSteering runs one arm of the section 5.4.1 experiment: a 25-node
// RandTree under churn with the documented bugs present, protected (or
// not) by CrystalBall.
func RandTreeSteering(cfg SteeringConfig, mode SteeringMode) SteeringResult {
	if cfg.Nodes == 0 {
		cfg.Nodes = 25
	}
	if cfg.Duration == 0 {
		cfg.Duration = 30 * time.Minute
	}
	if cfg.ChurnGap == 0 {
		cfg.ChurnGap = time.Minute
	}
	if cfg.MCStates == 0 {
		cfg.MCStates = 8000
	}
	opts := scenario.DeployOptions{
		Seed:             cfg.Seed,
		Service:          scenario.Options{Nodes: cfg.Nodes},
		Policy:           cfg.Policy,
		Workers:          cfg.Workers,
		SnapshotInterval: 10 * time.Second,
	}
	switch mode {
	case SteeringAndISC:
		opts.Control = scenario.Steering
		opts.MCStates = cfg.MCStates
	case ISCOnly:
		// The ISC-only arm runs the immediate safety check under a
		// debugging controller with no meaningful prediction budget.
		opts.Control = scenario.Debug
		opts.ISC = scenario.On
		opts.MCStates = 1
	default:
		opts.Control = scenario.Bare
	}
	d, err := scenario.Deploy("randtree", opts)
	if err != nil {
		panic(err)
	}
	s := d.Sim

	res := SteeringResult{Mode: mode}
	// Ground truth: after every executed action anywhere, check the
	// global state (the paper counts states containing inconsistencies).
	// Hooks go in before the join workload starts so the forming tree is
	// counted too. The view is refilled per event, not reallocated — the
	// simulator is single-threaded, so one shared view is safe.
	gt := props.NewView()
	for _, node := range d.Nodes {
		node.OnEvent = func(ev sm.Event) {
			d.FillView(gt)
			if !randtree.Properties.Holds(gt) {
				res.InconsistentStates++
			}
		}
	}
	d.StartWorkload()

	// Churn with join-time measurement.
	join := &stats.Sample{}
	rng := s.RNG("steer-churn")
	var churn func()
	churn = func() {
		node := d.Nodes[rng.Intn(len(d.Nodes))]
		node.Reset(rng.Intn(2) == 0)
		start := s.Now()
		s.After(500*time.Millisecond, func() {
			node.App(randtree.AppJoin{})
			// Poll for join completion.
			var poll func()
			poll = func() {
				if node.Service().(*randtree.Tree).Joined {
					join.AddDuration(s.Now().Sub(start) - 500*time.Millisecond)
					return
				}
				if s.Now().Sub(start) < 30*time.Second {
					s.After(100*time.Millisecond, poll)
				}
			}
			s.After(100*time.Millisecond, poll)
		})
		s.After(time.Duration(float64(cfg.ChurnGap)*scenario.ExpRand(rng.Float64())), churn)
	}
	s.After(cfg.ChurnGap, churn)

	s.RunFor(cfg.Duration)

	for _, node := range d.Nodes {
		res.ActionsExecuted += node.Stats.ActionsExecuted
		res.ActionsChanged += node.Stats.MessagesDropped + node.Stats.TimersDeferred +
			node.Stats.AppsBlocked + node.Stats.ISCBlocks
		res.ISCChecks += node.Stats.ISCChecks
		res.ISCBlocks += node.Stats.ISCBlocks
	}
	for _, c := range d.Ctrls {
		res.ViolationsPredicted += c.Stats.ViolationsPredicted
		res.FiltersInstalled += c.Stats.FiltersInstalled
		res.SteeringUnhelpful += c.Stats.SteeringUnhelpful
	}
	if join.N() > 0 {
		res.MeanJoinTime = time.Duration(join.Mean() * float64(time.Second))
		res.JoinSamples = join.N()
	}
	return res
}

// FormatSteering renders the three-arm comparison.
func FormatSteering(results []SteeringResult) string {
	t := stats.Table{
		Title: "RandTree execution steering (section 5.4.1)",
		Header: []string{"arm", "inconsistent-states", "actions", "changed", "changed%",
			"ISC-blocks", "predicted", "filters", "unhelpful", "mean-join"},
	}
	for _, r := range results {
		pct := 0.0
		if r.ActionsExecuted > 0 {
			pct = 100 * float64(r.ActionsChanged) / float64(r.ActionsExecuted)
		}
		t.Add(r.Mode.String(), r.InconsistentStates, r.ActionsExecuted, r.ActionsChanged,
			fmt.Sprintf("%.2f", pct), r.ISCBlocks, r.ViolationsPredicted,
			r.FiltersInstalled, r.SteeringUnhelpful, r.MeanJoinTime)
	}
	return t.String()
}
