// Package crystalball's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (scaled down so `go test
// -bench=.` completes in minutes; cmd/experiments regenerates the
// full-scale tables), plus ablation benchmarks for the design choices
// DESIGN.md section 7 calls out.
package crystalball_test

import (
	"fmt"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"crystalball/internal/dist"
	"crystalball/internal/experiments"
	"crystalball/internal/mc"
	"crystalball/internal/props"
	"crystalball/internal/runtime"
	"crystalball/internal/scenario"
	_ "crystalball/internal/scenario/all"
	"crystalball/internal/services/randtree"
	"crystalball/internal/simnet"
	"crystalball/internal/sm"
	"crystalball/internal/snapshot"
)

// BenchmarkTable1BugsFound runs the deep-online-debugging hunt (scaled).
func BenchmarkTable1BugsFound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Table1(experiments.Table1Config{
			Seed: int64(i + 1), Nodes: 8, Duration: 3 * time.Minute, MCStates: 4000,
		})
		var distinct int
		for _, r := range results {
			distinct += len(r.Distinct)
		}
		b.ReportMetric(float64(distinct), "distinct-bugs")
	}
}

// BenchmarkFig12ExhaustiveDepth measures the exhaustive-search depth sweep.
func BenchmarkFig12ExhaustiveDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig12Exhaustive(experiments.Fig12Config{
			Seed: 1, Nodes: 5, MaxDepth: 5, MaxStates: 500000,
		})
		b.ReportMetric(float64(pts[len(pts)-1].States), "states-at-max-depth")
	}
}

// BenchmarkFig15SearchMemory measures consequence-prediction memory growth.
func BenchmarkFig15SearchMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig15Memory(experiments.Fig15Config{
			Seed: 1, MaxDepth: 5, MaxStates: 500000,
		})
		last := pts[len(pts)-1]
		b.ReportMetric(float64(last.MemBytes), "peak-bytes")
		b.ReportMetric(last.PerStateByte, "bytes/state")
	}
}

// BenchmarkDepthComparison measures the section 5.3 comparison.
func BenchmarkDepthComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DepthComparison(1, time.Second, []int{5}, 0)
		for _, r := range rows {
			if r.Start == "live-snapshot" && r.Mode == "consequence" {
				b.ReportMetric(float64(r.States), "cp-states-to-violation")
			}
		}
	}
}

// BenchmarkRandTreeSteering runs one protected churn window (section 5.4.1).
func BenchmarkRandTreeSteering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RandTreeSteering(experiments.SteeringConfig{
			Seed: int64(i + 1), Nodes: 10, Duration: 5 * time.Minute,
			ChurnGap: 45 * time.Second, MCStates: 4000,
		}, experiments.SteeringAndISC)
		b.ReportMetric(float64(res.InconsistentStates), "inconsistent-states")
		b.ReportMetric(float64(res.FiltersInstalled), "filters")
	}
}

// BenchmarkFig14PaxosSteering runs the staged Paxos scenarios (scaled).
func BenchmarkFig14PaxosSteering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Fig14Paxos(experiments.Fig14Config{
			Seed: int64(i + 1), Runs: 4, MaxGap: 20 * time.Second, MCStates: 8000,
		})
		var avoided, violated int
		for _, r := range results {
			avoided += r.Steering + r.ISC
			violated += r.Violated
		}
		b.ReportMetric(float64(avoided), "avoided")
		b.ReportMetric(float64(violated), "violated")
	}
}

// BenchmarkFig17BulletOverhead measures the Bullet' download with and
// without CrystalBall.
func BenchmarkFig17BulletOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig17Bullet(experiments.Fig17Config{
			Seed: int64(i + 1), Nodes: 5, Blocks: 12, BlockSize: 32 << 10,
			Deadline: 8 * time.Minute,
		})
		b.ReportMetric(100*r.MeanSlowdown, "slowdown-%")
	}
}

// BenchmarkCheckpointSizes measures section 5.5's checkpoint costs.
func BenchmarkCheckpointSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Overhead(experiments.OverheadConfig{
			Seed: int64(i + 1), Nodes: 8, Duration: 40 * time.Second,
		})
		for _, r := range rows {
			if r.System == "RandTree" {
				b.ReportMetric(r.MeanCheckpointRaw, "randtree-ckpt-bytes")
			}
		}
	}
}

// --- micro-benchmarks of the core algorithms --------------------------------

// BenchmarkConsequencePrediction measures raw checker throughput on the
// formed-tree snapshot with faults enabled.
func BenchmarkConsequencePrediction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := searchFormedTree(mc.Consequence, 2000, 1, false)
		if res.StatesExplored == 0 {
			b.Fatal("no states explored")
		}
	}
}

// BenchmarkExhaustiveSearch is the baseline for the same start state.
func BenchmarkExhaustiveSearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := searchFormedTree(mc.Exhaustive, 2000, 1, false)
		if res.StatesExplored == 0 {
			b.Fatal("no states explored")
		}
	}
}

// BenchmarkParallelSearch compares worker-pool exploration throughput
// across worker counts for both breadth-first strategies, under the
// work-stealing per-worker deques ("steal") and the retired shared
// per-level FIFO ("legacy") — the frontier swap's scaling claim lives in
// the steal-vs-legacy delta at 4 and 8 workers (needs physical cores;
// states/sec is reported so CI hardware differences are visible).
func BenchmarkParallelSearch(b *testing.B) {
	const states = 20000
	for _, mode := range []mc.Mode{mc.Exhaustive, mc.Consequence} {
		for _, frontier := range []string{"steal", "legacy"} {
			for _, workers := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/workers-%d", mode, frontier, workers), func(b *testing.B) {
					b.ReportAllocs()
					var explored, nanos int64
					for i := 0; i < b.N; i++ {
						res := searchFormedTree(mode, states, workers, frontier == "legacy")
						if res.StatesExplored == 0 {
							b.Fatal("no states explored")
						}
						explored += int64(res.StatesExplored)
						nanos += res.Elapsed.Nanoseconds()
					}
					b.ReportMetric(float64(explored)/(float64(nanos)/1e9), "states/sec")
				})
			}
		}
	}
}

func searchFormedTree(mode mc.Mode, states, workers int, legacy bool) *mc.Result {
	factory := randtree.New(randtree.Config{Bootstrap: []sm.NodeID{1}, MaxChildren: 3})
	g := mc.NewGState()
	for i := 1; i <= 5; i++ {
		g.AddNode(sm.NodeID(i), factory(sm.NodeID(i)), nil)
	}
	s := mc.NewSearch(mc.Config{
		Props:          randtree.Properties,
		Factory:        factory,
		Mode:           mode,
		Workers:        workers,
		ExploreResets:  true,
		MaxStates:      states,
		LegacyFrontier: legacy,
	})
	return s.Run(g)
}

// BenchmarkReducedSearch is the partial-order reduction's coverage bench:
// the two scenarios the BENCH_6 acceptance bar names, searched with
// reduction off and on at the same depth. The reduced search claims the
// identical state and distinct-local-state sets (the reduction oracle pins
// this), so the coverage-per-budget gain is the locals/Mtrans ratio between
// adjacent reduce-off/reduce-on entries — ≥2× on both scenarios. Chord runs
// consequence prediction from a warmed (post-join-traffic) state, the live
// controller's actual starting point; cold chord consequence is degenerate
// (a handful of states) and cold chord exhaustive saturates near 1.6×.
func BenchmarkReducedSearch(b *testing.B) {
	for _, tc := range []struct {
		service                 string
		nodes, warmSteps, depth int
	}{
		{"paxos", 5, 0, 8},
		{"chord", 7, 4, 12},
	} {
		g, cfg, err := scenario.InitialState(tc.service, scenario.Options{Nodes: tc.nodes})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Mode = mc.Consequence
		cfg.MaxDepth = tc.depth
		cfg.Seed = 7
		if tc.warmSteps > 0 {
			g = warmPrefix(b, mc.NewSearch(cfg), g, tc.warmSteps)
		}
		for _, reduce := range []bool{false, true} {
			name := fmt.Sprintf("%s/reduce-off", tc.service)
			if reduce {
				name = fmt.Sprintf("%s/reduce-on", tc.service)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var trans, locals, n int64
				for i := 0; i < b.N; i++ {
					c := cfg
					c.Reduce = reduce
					res := mc.NewSearch(c).Run(g)
					if res.StatesExplored == 0 {
						b.Fatal("no states explored")
					}
					trans += int64(res.Transitions)
					locals += int64(res.DistinctLocalStates)
					n++
				}
				b.ReportMetric(float64(trans)/float64(n), "transitions")
				b.ReportMetric(float64(locals)/float64(n), "distinct-locals")
				b.ReportMetric(1e6*float64(locals)/float64(trans), "locals/Mtrans")
			})
		}
	}
}

// BenchmarkShardedSearch measures the distributed sharded search's
// aggregate throughput at 1, 2 and 4 shards (one expansion worker per
// shard; shards are goroutines, so the scaling claim is shards-as-cores
// plus the overlap of expansion with batch exchange). The claimed state
// set is identical to the single-process engine's at every shard count
// (the dist differential oracle pins this), so states/sec compares
// like-for-like work. Two measurement choices reduce scheduler noise:
// GOGC is raised for the benchmark's duration (the search is
// allocation-bound, and at the default the concurrent collector absorbs
// any spare core, hiding mutator scaling), and the reported states/sec
// is the best single round rather than the mean (shared-box load spikes
// inflate the mean; peak throughput is the stable estimator — run with
// -benchtime 8x or more to give it samples).
func BenchmarkShardedSearch(b *testing.B) {
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	for _, tc := range []struct {
		service      string
		nodes, depth int
	}{
		{"chord", 4, 9},
		{"paxos", 3, 7},
	} {
		g, cfg, err := scenario.InitialState(tc.service, scenario.Options{Nodes: tc.nodes})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Mode = mc.Exhaustive
		cfg.Seed = 7
		for _, shards := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/shards-%d", tc.service, shards), func(b *testing.B) {
				b.ReportAllocs()
				var best float64
				for i := 0; i < b.N; i++ {
					res, err := dist.Local(dist.LocalConfig{
						Shards: shards,
						Search: cfg,
						Root:   g,
						Budget: mc.Budget{Depth: tc.depth, Workers: 1},
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Checker.StatesExplored == 0 {
						b.Fatal("no states explored")
					}
					rate := float64(res.Checker.StatesExplored) / res.Checker.Elapsed.Seconds()
					if rate > best {
						best = rate
					}
				}
				b.ReportMetric(best, "states/sec")
			})
		}
	}
}

// warmPrefix applies a deterministic event prefix to g: each node's first
// application call in node order, then steps rounds of delivering the first
// enabled network event — enough join traffic that consequence prediction
// has live protocol state to look ahead from.
func warmPrefix(b *testing.B, s *mc.Search, g *mc.GState, steps int) *mc.GState {
	b.Helper()
	_, internal := s.EnabledEvents(g)
	ids := make([]int, 0, len(internal))
	for id := range internal {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		for _, ev := range internal[sm.NodeID(id)] {
			if _, isApp := ev.(sm.AppEvent); !isApp {
				continue
			}
			if next := s.ApplyEvent(g, ev); next != nil {
				g = next
			}
			break
		}
	}
	for i := 0; i < steps; i++ {
		net, _ := s.EnabledEvents(g)
		if len(net) == 0 {
			break
		}
		if next := s.ApplyEvent(g, net[0]); next != nil {
			g = next
		}
	}
	return g
}

// BenchmarkSnapshotCollection measures a full neighborhood snapshot round.
func BenchmarkSnapshotCollection(b *testing.B) {
	d, err := scenario.Deploy("chord", scenario.DeployOptions{
		Seed:        1,
		Service:     scenario.Options{Nodes: 10, Fixed: true},
		Path:        simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9},
		Control:     scenario.Bare,
		Checkpoints: true,
		Workload:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	d.Sim.RunFor(30 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		d.Mgrs[0].Collect(d.Nodes[0].Service().Neighbors(), func(*snapshot.Snapshot) { done = true })
		d.Sim.RunFor(3 * time.Second)
		if !done {
			b.Fatal("collection did not finish")
		}
	}
}

// --- ablations (DESIGN.md section 7) ----------------------------------------

// BenchmarkAblationLocalPruning quantifies the localExplored rule: states
// needed to find the Figure 2-class violation from a live snapshot with
// and without the pruning.
func BenchmarkAblationLocalPruning(b *testing.B) {
	for _, mode := range []mc.Mode{mc.Consequence, mc.Exhaustive} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := experiments.DepthComparison(1, 5*time.Second, []int{7}, 0)
				for _, r := range rows {
					if r.Start == "live-snapshot" && r.Mode == mode.String() {
						b.ReportMetric(float64(r.States), "states-to-violation")
						b.ReportMetric(float64(r.Elapsed.Microseconds()), "us-to-violation")
					}
				}
			}
		})
	}
}

// BenchmarkAblationFilterSafety measures steering with and without the
// filter-safety recheck.
func BenchmarkAblationFilterSafety(b *testing.B) {
	for _, check := range []bool{true, false} {
		name := "with-recheck"
		if !check {
			name = "without-recheck"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := steeringArm(int64(i+1), check, true)
				b.ReportMetric(float64(res.FiltersInstalled), "filters")
				b.ReportMetric(float64(res.InconsistentStates), "inconsistent-states")
			}
		})
	}
}

// BenchmarkAblationCompression measures checkpoint bytes with and without
// LZW compression + duplicate suppression.
func BenchmarkAblationCompression(b *testing.B) {
	for _, compress := range []bool{true, false} {
		name := "lzw"
		if !compress {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snapCfg := snapshot.DefaultConfig()
				snapCfg.Compress = compress
				d, err := scenario.Deploy("chord", scenario.DeployOptions{
					Seed:        int64(i + 1),
					Service:     scenario.Options{Nodes: 8, Fixed: true},
					Path:        simnet.UniformPath{Latency: 5 * time.Millisecond, BwBps: 1e9},
					Control:     scenario.Bare,
					Snapshot:    &snapCfg,
					Checkpoints: true,
					Workload:    true,
				})
				if err != nil {
					b.Fatal(err)
				}
				d.Sim.RunFor(15 * time.Second)
				for k := 0; k < 5; k++ {
					d.Mgrs[0].Collect(d.Nodes[0].Service().Neighbors(), func(*snapshot.Snapshot) {})
					d.Sim.RunFor(3 * time.Second)
				}
				b.ReportMetric(float64(d.Net.TotalBytesOut(simnet.KindCheckpoint)), "ckpt-bytes")
			}
		})
	}
}

// steeringArm runs a short protected churn window for the ablations. The
// rarely-used controller knobs (filter-safety recheck, path replay) are
// tweaked on a scenario-derived controller config and installed verbatim.
func steeringArm(seed int64, checkFilterSafety, replay bool) struct {
	FiltersInstalled   int64
	InconsistentStates int64
} {
	sc := scenario.MustLookup("randtree")
	opts := scenario.DeployOptions{
		Seed:     seed,
		Service:  scenario.Options{Nodes: 8},
		Control:  scenario.Steering,
		MCStates: 3000,
	}
	ctrl, err := sc.ControllerConfig(opts)
	if err != nil {
		panic(err)
	}
	ctrl.CheckFilterSafety = checkFilterSafety
	ctrl.ReplayPaths = replay
	opts.Controller = &ctrl
	d, err := sc.Deploy(opts)
	if err != nil {
		panic(err)
	}

	var out struct {
		FiltersInstalled   int64
		InconsistentStates int64
	}
	gt := props.NewView() // refilled per event; the simulator is single-threaded
	for _, node := range d.Nodes {
		node.OnEvent = func(sm.Event) {
			d.FillView(gt)
			if !randtree.Properties.Holds(gt) {
				out.InconsistentStates++
			}
		}
	}
	d.StartWorkload()
	d.StartChurn(40 * time.Second)
	d.Sim.RunFor(4 * time.Minute)
	for _, c := range d.Ctrls {
		out.FiltersInstalled += c.Stats.FiltersInstalled
	}
	return out
}

// BenchmarkAdaptiveRounds measures the budget-policy round-trip the
// controller pays per model-checking round: one Plan from the round info
// plus one Observe of the report. The policy contract requires both to be
// allocation-free (internal/mc's TestPolicyPlanObserveAllocFree pins 0
// allocs); this benchmark records the time floor so policy logic never
// creeps into round-scheduling cost.
func BenchmarkAdaptiveRounds(b *testing.B) {
	b.ReportAllocs()
	pol := &mc.AdaptivePolicy{
		Base:       mc.Budget{States: 20000, Workers: 2, Violations: 8},
		MaxWorkers: 8,
	}
	info := mc.RoundInfo{SnapshotBytes: 4096, SnapshotNodes: 12, Interval: 10 * time.Second}
	for i := 0; i < b.N; i++ {
		info.Round = i + 1
		plan := pol.Plan(info)
		pol.Observe(mc.RoundReport{
			Budget:  plan,
			States:  plan.States,
			Elapsed: time.Duration(plan.States) * 300 * time.Microsecond,
		})
	}
}

// BenchmarkStateHash measures global-state hashing, the checker's hottest
// primitive. The fingerprint is a commutative sum of per-component hashes
// maintained incrementally through every successor constructor, so:
//
//   - lookup: Hash on an existing state is an O(1) read;
//   - successor: apply + hash of a successor pays only O(delta) — the one
//     re-encoded node and the touched messages — instead of re-encoding
//     all 9 nodes;
//   - full-recompute: the from-scratch oracle (FullHash), which is what
//     every successor hash used to cost before the incremental scheme.
func BenchmarkStateHash(b *testing.B) {
	factory, g := formedTree(9)
	s := mc.NewSearch(mc.Config{
		Props:   randtree.Properties,
		Factory: factory,
	})
	ev := sm.TimerEvent{At: 5, Timer: randtree.TimerRecovery}
	succ := s.ApplyEvent(g, ev)
	if succ == nil {
		b.Fatal("timer event not applicable")
	}

	b.Run("lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if g.Hash() == 0 {
				b.Fatal("zero hash")
			}
		}
	})
	b.Run("successor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			next := s.ApplyEvent(g, ev)
			if next == nil || next.Hash() == 0 {
				b.Fatal("bad successor")
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if succ.FullHash() == 0 {
				b.Fatal("zero hash")
			}
		}
	})
}

// BenchmarkGlobalProps measures per-state cross-node property evaluation,
// the cost the global property engine adds to every explored state: refill
// the engine's pooled view from the state (the freelist path — NodeViews
// are recycled, not reallocated), then evaluate the scenario's GlobalSet.
// Chord exercises the ring cycle count over a warmed topology; the CRDT
// scenarios exercise the pairwise convergence compare over warmed replica
// state. AppendViolated(nil, ...) on a holding set returns nil, so a clean
// state — the overwhelming case — costs zero allocations beyond the view
// refill.
func BenchmarkGlobalProps(b *testing.B) {
	cases := []struct {
		service string
		nodes   int
		warm    int
	}{
		{"chord", 7, 4},
		{"gcounter", 5, 4},
		{"orset", 5, 4},
		{"lwwmap", 5, 4},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.service, func(b *testing.B) {
			g, cfg, err := scenario.InitialState(tc.service, scenario.Options{Nodes: tc.nodes})
			if err != nil {
				b.Fatal(err)
			}
			if len(cfg.GlobalProps) == 0 {
				b.Fatal("scenario has no global properties")
			}
			g = warmPrefix(b, mc.NewSearch(cfg), g, tc.warm)
			v := props.NewView()
			var violated int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Reset()
				g.FillView(v)
				violated += len(cfg.GlobalProps.AppendViolated(nil, props.Global(v)))
			}
			b.ReportMetric(float64(violated)/float64(b.N), "violated/op")
		})
	}
}

// BenchmarkCheckpointEncode measures full-state encoding (checkpoint
// creation).
func BenchmarkCheckpointEncode(b *testing.B) {
	factory := randtree.New(randtree.Config{Bootstrap: []sm.NodeID{1}})
	t := factory(1).(*randtree.Tree)
	t.Joined = true
	t.IsRoot = true
	t.Root = 1
	for i := 2; i <= 20; i++ {
		t.Children[sm.NodeID(i)] = true
		t.Peers[sm.NodeID(i)] = true
	}
	timers := map[sm.TimerID]bool{randtree.TimerRecovery: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(sm.EncodeFullState(t, timers)) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func formedTree(n int) (sm.Factory, *mc.GState) {
	factory := randtree.New(randtree.Config{Bootstrap: []sm.NodeID{1}, MaxChildren: 3})
	g := mc.NewGState()
	for i := 1; i <= n; i++ {
		id := sm.NodeID(i)
		t := factory(id).(*randtree.Tree)
		t.Joined = true
		t.Root = 1
		t.IsRoot = i == 1
		if i > 1 {
			t.Parent = sm.NodeID(i / 2)
		} else {
			t.Parent = sm.NoNode
		}
		g.AddNode(id, t, map[sm.TimerID]bool{randtree.TimerRecovery: true})
	}
	return factory, g
}

// BenchmarkISCSpeculation measures the immediate safety check's per-event
// cost (clone + speculative handler + property check).
func BenchmarkISCSpeculation(b *testing.B) {
	d, err := scenario.Deploy("randtree", scenario.DeployOptions{
		Seed:     1,
		Service:  scenario.Options{Nodes: 2},
		Path:     simnet.UniformPath{Latency: time.Millisecond, BwBps: 1e9},
		Control:  scenario.Bare,
		Workload: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	n1 := d.Nodes[0]
	d.Sim.RunFor(10 * time.Second)
	n1.EnableISC(randtree.Properties, func() *props.View { return props.NewView() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Drive a message through the ISC path.
		d.Net.Send(2, 1, runtime.Envelope{Msg: randtree.Probe{}}, 12, simnet.KindService)
		d.Sim.RunFor(10 * time.Millisecond)
	}
	if n1.Stats.ISCChecks == 0 {
		b.Fatal("ISC never engaged")
	}
}
