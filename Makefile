GO ?= go

.PHONY: build test race lint bench bench-compare bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis: formatting, stock vet, then the crystalvet suite
# (determinism, hot-path allocation and fingerprint-maintenance passes —
# see internal/analysis). The vettool build is cached by the ordinary go
# build cache, so repeat runs are fast.
lint:
	@fmtout=$$(gofmt -l cmd internal examples); \
	if [ -n "$$fmtout" ]; then echo "gofmt needed:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/crystalvet ./...

race:
	$(GO) test -race ./internal/mc ./internal/controller ./internal/scenario/...

# Re-record the "after" side of the committed benchmark artifact (run on a
# quiet machine; commits the new numbers).
bench:
	$(GO) run ./cmd/benchjson -label after -out BENCH_10.json

# Record the "before" side (run on the base revision before a perf change).
bench-baseline:
	$(GO) run ./cmd/benchjson -label before -out BENCH_10.json

# Warn-only comparison of the working tree against the committed "after"
# snapshot; pass STRICT=1 to fail on regression.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_10.json $(if $(STRICT),-strict,)
